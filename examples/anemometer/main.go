// Anemometer: the paper's §9 application study in miniature. Four
// duty-cycled sensors in the 15-node office mesh sample at 1 Hz and ship
// batched readings to a cloud collector behind the border router — once
// over TCPlp and once over CoAP — reporting reliability and radio/CPU
// duty cycles.
package main

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/ip6"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

const sensors = 4

func run(useTCP bool) {
	net := stack.New(99, mesh.Office(), stack.DefaultOptions())
	host := net.AttachHost()

	credit := map[ip6.Addr]*app.SensorStats{}
	app.NewCollector(host, 80, credit)

	nodes := []int{11, 12, 13, 14}
	info := stack.SegmentSizing(5, true)
	var all []*app.Sensor
	for _, id := range nodes {
		node := net.Nodes[id]
		sc := net.MakeSleepyLeaf(id)
		sc.SleepInterval = 4 * sim.Minute
		sc.FastInterval = 100 * sim.Millisecond
		sc.Start()

		var tr app.Transport
		queueCap := app.TCPQueueCap
		if useTCP {
			tr = app.NewTCPTransport(node, host.Addr, 80)
		} else {
			queueCap = app.CoAPQueueCap
			tr = app.NewCoAPTransport(node, host.Addr, true,
				info.SegmentPayload/app.ReadingSize*app.ReadingSize)
		}
		s := app.NewSensor(net.Eng, tr, queueCap)
		s.Batch = app.DefaultBatch
		switch v := tr.(type) {
		case *app.TCPTransport:
			v.Attach(s)
		case *app.CoAPTransport:
			v.Attach(s)
		}
		credit[node.Addr] = &s.Stats
		all = append(all, s)
		s.Start()
	}

	// Warm up, then measure 20 simulated minutes.
	net.Eng.RunFor(2 * sim.Minute)
	for _, id := range nodes {
		net.Nodes[id].Radio.ResetEnergy()
		net.Nodes[id].CPU.Reset()
	}
	var gen0, del0 uint64
	for _, s := range all {
		gen0 += s.Stats.Generated
		del0 += s.Stats.Delivered
	}
	net.Eng.RunFor(20 * sim.Minute)

	var gen, del uint64
	var radio, cpu float64
	for _, s := range all {
		gen += s.Stats.Generated
		del += s.Stats.Delivered
	}
	for _, id := range nodes {
		radio += net.Nodes[id].Radio.DutyCycle()
		cpu += net.Nodes[id].CPU.DutyCycle()
	}
	name := "CoAP "
	if useTCP {
		name = "TCPlp"
	}
	rel := float64(del-del0) / float64(gen-gen0) * 100
	if rel > 100 {
		rel = 100
	}
	fmt.Printf("%s: reliability %5.1f%%   radio duty cycle %.2f%%   CPU duty cycle %.2f%%\n",
		name, rel, radio/sensors*100, cpu/sensors*100)
}

func main() {
	fmt.Println("Anemometer telemetry, 4 duty-cycled sensors at 3-5 hops, batching 64 readings (§9):")
	run(true)
	run(false)
	fmt.Println("\npaper Table 8: TCPlp 99.3% @ 2.29% radio DC vs CoAP 99.5% @ 1.84% — comparable.")
}
