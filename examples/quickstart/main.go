// Quickstart: two motes one wireless hop apart transfer a bulk TCP
// stream for 30 simulated seconds, demonstrating the library's core
// loop: build a network, open a TCPlp connection, move bytes, read the
// counters.
package main

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

func main() {
	// A two-node chain: node 0 will receive, node 1 will send. The
	// default options are the paper's standard configuration: MSS of
	// five 802.15.4 frames, four-segment buffers, every TCP feature on.
	net := stack.New(42, mesh.Chain(2, 10), stack.DefaultOptions())

	sink := app.ListenSink(net.Nodes[0], 80)
	src := app.StartBulk(net.Nodes[1], net.Nodes[0].Addr, 80)

	// Let the connection establish and ramp, then measure 30 s.
	net.Eng.RunFor(5 * sim.Second)
	sink.Mark()
	net.Eng.RunFor(30 * sim.Second)

	info := stack.SegmentSizing(net.Opt.SegFrames, true)
	fmt.Printf("TCPlp quickstart: one hop, MSS %d B (%d frames), window %d segments\n",
		info.MSS, net.Opt.SegFrames, net.Opt.WindowSegs)
	fmt.Printf("  goodput:         %.1f kb/s (paper: 63-75 kb/s)\n", sink.GoodputKbps())
	fmt.Printf("  bytes delivered: %d\n", sink.BytesSinceMark())
	st := src.Conn.Stats
	fmt.Printf("  segments sent:   %d (retransmits %d, timeouts %d)\n",
		st.SegsSent, st.Retransmits, st.Timeouts)
	fmt.Printf("  srtt:            %v\n", src.Conn.SRTT())
	fmt.Printf("  frames on air:   %d\n", net.TotalFramesSent())
}
