// Multihop: a TCP flow over a three-hop chain with hidden terminals,
// showing the paper's §7.1 result — without a randomized link-retry
// delay, hidden-terminal collisions repeat and segment loss is high;
// with d = 40 ms the loss melts away while goodput holds.
package main

import (
	"fmt"

	"tcplp/internal/app"
	"tcplp/internal/mesh"
	"tcplp/internal/sim"
	"tcplp/internal/stack"
)

func run(d sim.Duration) {
	opt := stack.DefaultOptions()
	opt.MAC.RetryDelayMax = d
	net := stack.New(7, mesh.Chain(4, 10), opt)

	sink := app.ListenSink(net.Nodes[0], 80)
	src := app.StartBulk(net.Nodes[3], net.Nodes[0].Addr, 80)

	net.Eng.RunFor(10 * sim.Second)
	sink.Mark()
	before := src.Conn.Stats
	framesBefore := net.TotalFramesSent()
	net.Eng.RunFor(60 * sim.Second)

	st := src.Conn.Stats
	segs := float64(st.BytesSent-before.BytesSent) / float64(net.Opt.TCP.MSS)
	loss := 0.0
	if segs > 0 {
		loss = float64(st.Retransmits-before.Retransmits) / segs
	}
	fmt.Printf("d = %-6v goodput %6.1f kb/s   segment loss %5.2f%%   RTT %8v   frames %6d   (timeouts %d, fast rtx %d)\n",
		d, sink.GoodputKbps(), loss*100, src.Conn.SRTT(),
		net.TotalFramesSent()-framesBefore,
		st.Timeouts-before.Timeouts, st.FastRetransmits-before.FastRetransmits)
}

func main() {
	fmt.Println("TCP over three wireless hops (hidden terminals), varying the max link-retry delay d:")
	for _, d := range []sim.Duration{0, 5 * sim.Millisecond, 40 * sim.Millisecond, 100 * sim.Millisecond} {
		run(d)
	}
	fmt.Println("\npaper Fig. 6b: ≈6% loss at d=0 falling under 1% by d=30ms, with goodput nearly flat —")
	fmt.Println("the small-window congestion behaviour of §7.3 masks the loss.")
}
