# tools/plot.gp — render a scenario sweep CSV into a paper-style figure.
#
# Usage:
#   go run ./cmd/tcplp-bench -scenario examples/scenarios/fig6_sweep.json -format csv > sweep.csv
#   gnuplot -e "csv='sweep.csv'; out='sweep.png'" tools/plot.gp
#
# or, in one step:
#
#   make plot SPEC=examples/scenarios/fig6_sweep.json OUT=sweep
#
# The CSV is the runner's long format — one row per (cell, seed, flow),
# with the sweep coordinates embedded in the scenario name
# ("fig6-3hop/d=40ms") — so this recipe needs no per-figure
# configuration: it plots per-flow goodput against the sweep cell (one
# point per seed, so multi-seed runs show their spread directly) with
# the run-level aggregate overlaid, and labels each tick with the
# cell's axis coordinates.

if (!exists("csv")) csv = "sweep.csv"
if (!exists("out")) out = "sweep.png"

set datafile separator ","
set terminal pngcairo size 1100,620 font "Helvetica,11"
set output out

set key outside right top
set ylabel "goodput (kb/s)"
set xlabel "sweep cell"
set xtics rotate by -35 right
set grid ytics lc rgb "#dddddd"
set yrange [0:*]
set offsets 0.5, 0.5, 0, 0

# Tick labels: the coordinates after the first '/', or the whole name
# for sweeps of standalone specs.
cell(s) = strstrt(s, "/") ? s[strstrt(s, "/") + 1:*] : s

# Column map (see scenario.WriteCSV): 1 scenario, 2 seed, 3 flow,
# 8 goodput_kbps, 23 aggregate_kbps.
plot csv skip 1 using 0:8:xticlabels(cell(stringcolumn(1))) \
         with points pt 7 ps 1.1 lc rgb "#4472c4" title "flow goodput (per seed)", \
     csv skip 1 using 0:23 \
         with lines lw 1.5 lc rgb "#c0504d" title "aggregate"
