// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// can accumulate across PRs (make bench-json):
//
//	go test -run=NONE -bench=. -benchmem -benchtime=1x ./... | go run ./tools/benchjson > BENCH_7.json
//
// It understands the standard bench line — name-GOMAXPROCS, iteration
// count, then (value, unit) metric pairs (-benchmem's B/op and
// allocs/op included) — plus the pkg:/goos:/goarch: headers, and
// ignores everything else (PASS/ok/no-test-files noise).
//
// Diff mode compares two snapshots instead:
//
//	go run ./tools/benchjson -diff BENCH_6.json BENCH_7.json
//
// It prints per-benchmark deltas for ns/op and allocs/op and emits a
// warning line (GitHub-annotation formatted) for every regression past
// 20%. The exit status is always 0: the trajectory check flags drift,
// it does not gate merges on a noisy shared runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchName splits "BenchmarkFoo-8" into the bare name and GOMAXPROCS.
var benchName = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?$`)

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a Benchmark-prefixed non-result line
		}
		b := Benchmark{
			Pkg:        pkg,
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		// The rest of the line is (value, unit) pairs: ns/op first, then
		// any custom ReportMetric units.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// load reads a Report back from a snapshot file.
func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: bad snapshot %s: %v", path, err)
	}
	return &rep, nil
}

// diff compares two snapshots on the wall-clock and allocation metrics
// and writes a per-benchmark report; regressions past the threshold get
// a ::warning:: annotation line. It never fails the build.
func diff(oldPath, newPath string, threshold float64) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	prev := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		prev[b.Pkg+"."+b.Name] = b
	}
	regressions := 0
	for _, nb := range newRep.Benchmarks {
		ob, ok := prev[nb.Pkg+"."+nb.Name]
		if !ok {
			fmt.Printf("%-40s  new benchmark\n", nb.Name)
			continue
		}
		var cols []string
		for _, metric := range []string{"ns/op", "allocs/op"} {
			ov, nv := ob.Metrics[metric], nb.Metrics[metric]
			if ov <= 0 || nv <= 0 {
				continue
			}
			delta := (nv - ov) / ov
			cols = append(cols, fmt.Sprintf("%s %+.1f%%", metric, delta*100))
			if delta > threshold {
				regressions++
				fmt.Printf("::warning::bench regression: %s %s %.0f -> %.0f (%+.1f%%, threshold %.0f%%)\n",
					nb.Name, metric, ov, nv, delta*100, threshold*100)
			}
		}
		fmt.Printf("%-40s  %s\n", nb.Name, strings.Join(cols, "  "))
	}
	if regressions == 0 {
		fmt.Printf("no regressions past %.0f%% (%s -> %s)\n", threshold*100, oldPath, newPath)
	}
	return nil
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two snapshots: benchjson -diff OLD.json NEW.json (warns, never fails)")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold for -diff warnings")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := diff(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
