// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories
// can accumulate across PRs (make bench-json):
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | go run ./tools/benchjson > BENCH_6.json
//
// It understands the standard bench line — name-GOMAXPROCS, iteration
// count, then (value, unit) metric pairs — plus the pkg:/goos:/goarch:
// headers, and ignores everything else (PASS/ok/no-test-files noise).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchName splits "BenchmarkFoo-8" into the bare name and GOMAXPROCS.
var benchName = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?$`)

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := benchName.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a Benchmark-prefixed non-result line
		}
		b := Benchmark{
			Pkg:        pkg,
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		// The rest of the line is (value, unit) pairs: ns/op first, then
		// any custom ReportMetric units.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
