module tcplp

go 1.21
